// Command expdriver regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index), runs declarative experiment
// campaigns, and serves campaigns as a long-running HTTP daemon. Each
// figure prints as a text table whose rows/series mirror the paper's plot;
// -json additionally emits the machine-readable form the CI
// figure-regression gate consumes.
//
// Usage:
//
//	expdriver -exp fig2                 # one figure
//	expdriver -exp all -quick           # everything on a reduced pool
//	expdriver -exp headline -len 100000 # the 17.6%/24% claim
//	expdriver -exp headline -quick -json headline.json
//
//	expdriver -manifest examples/campaign/iqsweep.json   # declarative sweep
//	expdriver -manifest m.json -dry-run                  # expanded spec set only
//	expdriver -manifest m.json -store .campaign          # persistent result store
//
//	expdriver diff -tol 0.02 old.json new.json           # compare result JSONs
//
//	expdriver bench -quick -out BENCH_6.json             # continuous-benchmark suite
//	expdriver bench -text                                # benchstat-friendly lines
//	expdriver bench diff -tol 0.05 old.json new.json     # gate on regressions
//
//	expdriver serve -addr :8080 -store .campaign         # campaign service daemon
//	expdriver serve -fleet -addr :8080                   # fleet coordinator mode
//	expdriver worker -coordinator http://host:8080       # fleet worker process
//	expdriver submit -wait examples/campaign/iqsweep.json # POST a manifest to it
//	expdriver status [job-id]                            # job list / per-item progress
//	expdriver cancel job-id                              # stop a running campaign
//
//	expdriver store gc -store .campaign -max-age 720h    # compact the result store
//
//	expdriver report -quick -o out.html examples/campaign/iqsweep.json # static HTML report with time-series sparklines
//
//	expdriver schemes [-json]                            # scheme registry listing
//	expdriver components [-json]                         # selector/IQ/RF component registries
//	expdriver workloads -category dh                     # Table 2 workload pool
//
// Scheme-parameterized figures accept composed scheme specs:
//
//	expdriver -exp fig3 -scheme 'sel=stall,iq=cssp,rf=cdprf' -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"clustersmt/internal/experiments"
	"clustersmt/internal/metrics"
	"clustersmt/internal/policy"
	"clustersmt/internal/report"
)

func main() {
	if len(os.Args) > 1 {
		sub, rest := os.Args[1], os.Args[2:]
		switch sub {
		case "diff":
			os.Exit(runDiff(rest))
		case "bench":
			os.Exit(runBench(rest))
		case "serve":
			os.Exit(runServe(rest))
		case "worker":
			os.Exit(runWorker(rest))
		case "store":
			os.Exit(runStoreCmd(rest))
		case "submit":
			os.Exit(runSubmit(rest))
		case "status":
			os.Exit(runStatus(rest))
		case "cancel":
			os.Exit(runCancel(rest))
		case "report":
			os.Exit(runReport(rest))
		case "schemes":
			os.Exit(runSchemes(rest))
		case "components":
			os.Exit(runComponents(rest))
		case "workloads":
			os.Exit(runWorkloads(rest))
		default:
			// Only flags fall through to figure/campaign mode; a mistyped
			// subcommand must not silently start the full experiment suite.
			if !strings.HasPrefix(sub, "-") {
				fmt.Fprintf(os.Stderr, "expdriver: unknown subcommand %q (diff|bench|serve|worker|store|submit|status|cancel|report|schemes|components|workloads; flags select figure/campaign mode)\n", sub)
				os.Exit(2)
			}
		}
	}
	var schemeFlags schemeList
	flag.Var(&schemeFlags, "scheme", "override the scheme list of scheme-parameterized figures; a named scheme or a full spec (sel=...,iq=...,rf=...); repeatable")
	var (
		exp        = flag.String("exp", "all", "experiment: fig2|fig3|fig4|fig5|fig6|fig9|fig10|headline|future|clusterscale|all")
		traceLen   = flag.Int("len", 60000, "trace length per thread (uops)")
		quick      = flag.Bool("quick", false, "reduced pool (3 type-balanced workloads per category)")
		cats       = flag.String("categories", "", "comma-separated category subset (default: all)")
		clusters   = flag.Int("clusters", 0, "back-end cluster count for figure-mode runs (0 = Table 1 default, 2)")
		links      = flag.Int("links", 0, "inter-cluster links for figure-mode runs (0 = Table 1 default, 2)")
		linkLat    = flag.Int("link-latency", 0, "inter-cluster link latency in cycles (0 = Table 1 default, 1)")
		memLat     = flag.Int("mem-latency", 0, "main-memory latency in cycles (0 = Table 1 default, 60)")
		verbose    = flag.Bool("v", false, "log every simulation")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit (go tool pprof; pairs with GODEBUG=memprofilerate=1 for exact counts)")
		manifest   = flag.String("manifest", "", "campaign manifest JSON: run a declarative sweep instead of the figure set")
		storeDir   = flag.String("store", ".campaign", "campaign result store directory (empty disables persistence)")
		dryRun     = flag.Bool("dry-run", false, "with -manifest: print the expanded spec set and estimated simulation count, run nothing")
		resume     = flag.Bool("resume", true, "with -manifest: reuse results already in the store (=false re-executes and overwrites)")
		jsonOut    = flag.String("json", "", "write machine-readable results (figure map or campaign result set) to this file")
		csvOut     = flag.String("csv", "", "write result rows as CSV to this file (campaign results with -manifest, flat figure rows with -exp clusterscale)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
	// flushProfiles finalizes both profiles; it must run before every exit
	// path (os.Exit skips defers).
	flushProfiles := func() {
		pprof.StopCPUProfile()
		writeMemProfile(*memprofile)
	}
	defer flushProfiles()

	if *manifest != "" {
		// The figure-mode selectors do not apply to campaigns; warn rather
		// than silently ignore an explicitly set flag.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "exp", "len", "quick", "categories", "scheme",
				"clusters", "links", "link-latency", "mem-latency":
				fmt.Fprintf(os.Stderr, "warning: -%s is ignored with -manifest (the manifest defines the sweep)\n", f.Name)
			}
		})
		code := runCampaign(campaignOpts{
			manifest: *manifest,
			storeDir: *storeDir,
			dryRun:   *dryRun,
			resume:   *resume,
			jsonOut:  *jsonOut,
			csvOut:   *csvOut,
			verbose:  *verbose,
		})
		flushProfiles() // before the deferless exit
		os.Exit(code)
	}

	r := experiments.NewRunner(*traceLen)
	r.Shape = experiments.MachineShape{
		NumClusters: *clusters,
		Links:       *links,
		LinkLatency: *linkLat,
		MemLatency:  *memLat,
	}
	if *verbose {
		r.Verbose = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	o := experiments.Options{}
	if *quick {
		o.MaxPerCategory = 3
	}
	if *cats != "" {
		o.Categories = strings.Split(*cats, ",")
	}

	if len(schemeFlags) > 0 && (*exp == "headline" || *exp == "future") {
		fmt.Fprintf(os.Stderr, "warning: -scheme is ignored by -exp %s (fixed scheme set)\n", *exp)
	}

	start := time.Now()
	emitted := map[string]any{}
	run := func(name string, fn func() (any, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		v, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			flushProfiles() // before the deferless exit
			os.Exit(1)
		}
		emitted[name] = v
	}

	run("fig2", func() (any, error) { return fig2(r, o, schemeFlags) })
	run("fig3", func() (any, error) { return figMetric(r, o, 3, schemeFlags) })
	run("fig4", func() (any, error) { return figMetric(r, o, 4, schemeFlags) })
	run("fig5", func() (any, error) { return fig5(r, o, schemeFlags) })
	run("fig6", func() (any, error) { return fig6(r, o, schemeFlags) })
	run("fig9", func() (any, error) { return fig9(r, o, schemeFlags) })
	run("fig10", func() (any, error) { return fig10(r, o, schemeFlags) })
	run("headline", func() (any, error) { return headline(r, o) })
	run("future", func() (any, error) { return future(r, o) })
	run("clusterscale", func() (any, error) {
		if *clusters != 0 {
			fmt.Fprintln(os.Stderr, "warning: -clusters is ignored by -exp clusterscale (the figure sweeps its own cluster axis)")
		}
		return clusterScale(r, o, schemeFlags, *csvOut)
	})
	if *jsonOut != "" {
		if err := report.WriteJSONFile(*jsonOut, emitted); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			flushProfiles() // before the deferless exit
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start).Round(time.Second))
}

// writeMemProfile emits the allocation profile ("allocs": every allocation
// since process start, with in-use and cumulative views) to path, after a
// final GC so the in-use numbers reflect live memory rather than floating
// garbage. No-op when path is empty.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
	}
}

// schemeList collects repeated -scheme flags. Each value is validated and
// canonicalized at parse time, so `-scheme sel=icount,iq=cssp,rf=cdprf`
// and `-scheme cdprf` produce identical series (and share cached runs).
type schemeList []string

// String implements flag.Value.
func (s *schemeList) String() string { return strings.Join(*s, " ") }

// Set implements flag.Value.
func (s *schemeList) Set(v string) error {
	canon, err := policy.CanonicalScheme(v)
	if err != nil {
		return err
	}
	*s = append(*s, canon)
	return nil
}

// or returns the override list when -scheme was given, else def.
func (s schemeList) or(def []string) []string {
	if len(s) > 0 {
		return []string(s)
	}
	return def
}

func seriesTable(title string, cs *experiments.CategorySeries, seriesOrder []string) {
	header := append([]string{"category"}, seriesOrder...)
	var rows [][]string
	for _, cat := range cs.Categories {
		row := []string{cat}
		for _, s := range seriesOrder {
			row = append(row, report.F(cs.Values[s][cat]))
		}
		rows = append(rows, row)
	}
	fmt.Println(report.Table(title, header, rows))
}

func fig2(r *experiments.Runner, o experiments.Options, sf schemeList) (any, error) {
	schemes := sf.or(policy.PaperIQSchemes())
	cs, err := experiments.Fig2(r, o, schemes, []int{32, 64})
	if err != nil {
		return nil, err
	}
	var order []string
	for _, iq := range []int{32, 64} {
		for _, s := range schemes {
			order = append(order, fmt.Sprintf("%s/%d", s, iq))
		}
	}
	seriesTable("Figure 2: throughput speedup vs Icount@32 (RF/ROB unbounded)", cs, order)
	return cs, nil
}

func figMetric(r *experiments.Runner, o experiments.Options, fig int, sf schemeList) (any, error) {
	schemes := sf.or(policy.PaperIQSchemes())
	var cs *experiments.CategorySeries
	var err error
	var title string
	if fig == 3 {
		cs, err = experiments.Fig3(r, o, schemes)
		title = "Figure 3: inter-cluster copies per retired instruction (IQ=32)"
	} else {
		cs, err = experiments.Fig4(r, o, schemes)
		title = "Figure 4: issue-queue stalls per retired instruction (IQ=32)"
	}
	if err != nil {
		return nil, err
	}
	seriesTable(title, cs, schemes)
	return cs, nil
}

func fig5(r *experiments.Runner, o experiments.Options, sf schemeList) (any, error) {
	schemes := sf.or([]string{"icount", "cisp", "cssp", "pc"})
	res, err := experiments.Fig5(r, o, schemes)
	if err != nil {
		return nil, err
	}
	header := []string{"category", "scheme"}
	for k := 0; k < metrics.NumImbClasses; k++ {
		for kind := 0; kind < 2; kind++ {
			header = append(header, fmt.Sprintf("%d %s", kind, metrics.ImbClass(k)))
		}
	}
	var rows [][]string
	for _, cat := range res.Categories {
		for _, s := range schemes {
			row := []string{cat, s}
			m := res.Frac[cat][s]
			for k := 0; k < metrics.NumImbClasses; k++ {
				for kind := 0; kind < 2; kind++ {
					row = append(row, report.F(m[k][kind]))
				}
			}
			rows = append(rows, row)
		}
	}
	fmt.Println(report.Table("Figure 5: workload imbalance (fraction of issuing cycles; kind 1 = other cluster had a free port)", header, rows))
	return res, nil
}

func fig6(r *experiments.Runner, o experiments.Options, sf schemeList) (any, error) {
	schemes := sf.or(policy.PaperRFSchemes())
	cs, err := experiments.Fig6(r, o, schemes, []int{64, 128})
	if err != nil {
		return nil, err
	}
	var order []string
	for _, rg := range []int{64, 128} {
		for _, s := range schemes {
			order = append(order, fmt.Sprintf("%s/%d", s, rg))
		}
	}
	seriesTable("Figure 6: throughput speedup vs Icount@64regs (IQ=32, ROB=128)", cs, order)
	return cs, nil
}

func fig9(r *experiments.Runner, o experiments.Options, sf schemeList) (any, error) {
	schemes := sf.or([]string{"cssp", "cssprf", "cisprf", "cdprf"})
	res, err := experiments.Fig9(r, o, schemes)
	if err != nil {
		return nil, err
	}
	header := append([]string{"workload"}, schemes...)
	var rows [][]string
	for _, wl := range res.Workloads {
		row := []string{wl}
		for _, s := range schemes {
			row = append(row, report.F(res.Speedup[wl][s]))
		}
		rows = append(rows, row)
	}
	fmt.Println(report.Table("Figure 9: ISPEC-FSPEC speedups vs Icount (64 regs/cluster)", header, rows))
	return res, nil
}

func fig10(r *experiments.Runner, o experiments.Options, sf schemeList) (any, error) {
	schemes := sf.or([]string{"stall", "flush+", "cssp", "cdprf"})
	cs, err := experiments.Fig10(r, o, schemes)
	if err != nil {
		return nil, err
	}
	seriesTable("Figure 10: fairness relative to Icount (64 regs/cluster)", cs, schemes)
	return cs, nil
}

func headline(r *experiments.Runner, o experiments.Options) (any, error) {
	h, err := experiments.Headline(r, o)
	if err != nil {
		return nil, err
	}
	fmt.Println(report.Table("Headline (paper: CDPRF +17.6% throughput, +24% fairness, up to +40% per category)",
		[]string{"metric", "value"},
		[][]string{
			{"CSSP speedup vs Icount", report.Pct(h.CSSPSpeedup)},
			{"CDPRF speedup vs Icount", report.Pct(h.CDPRFSpeedup)},
			{"CDPRF fairness vs Icount", report.Pct(h.FairnessRatio)},
			{"best category", fmt.Sprintf("%s %s", h.BestCategory, report.Pct(h.BestCategorySpeedup))},
		}))
	return h, nil
}

func clusterScale(r *experiments.Runner, o experiments.Options, sf schemeList, csvOut string) (any, error) {
	schemes := sf.or(experiments.ClusterScaleSchemes())
	counts := experiments.ClusterScaleCounts()
	res, err := experiments.ClusterScaling(r, o, schemes, counts)
	if err != nil {
		return nil, err
	}
	var order []string
	for _, s := range schemes {
		for _, c := range counts {
			order = append(order, fmt.Sprintf("%s/c%d", s, c))
		}
	}
	seriesTable("Cluster scaling: IPC vs cluster count (IQ=32, RF/ROB unbounded)", res.IPC, order)
	seriesTable("Cluster scaling: copies per retired instruction", res.Copies, order)
	seriesTable("Cluster scaling: IQ stalls per retired instruction", res.IQStalls, order)
	if csvOut != "" {
		header, rows := res.CSV()
		if err := os.WriteFile(csvOut, []byte(report.CSV(header, rows)), 0o644); err != nil {
			return nil, fmt.Errorf("csv: %w", err)
		}
	}
	return res, nil
}

func future(r *experiments.Runner, o experiments.Options) (any, error) {
	out, err := experiments.FutureWork(r, o)
	if err != nil {
		return nil, err
	}
	var names []string
	for s := range out {
		names = append(names, s)
	}
	sort.Strings(names)
	var rows [][]string
	for _, s := range names {
		rows = append(rows, []string{s, report.Pct(out[s])})
	}
	fmt.Println(report.Table("Future work (§6): cluster-aware DCRA and hill-climbing vs CDPRF (speedup vs Icount)",
		[]string{"scheme", "speedup"}, rows))
	return out, nil
}
