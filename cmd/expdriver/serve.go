package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clustersmt/internal/campaign"
	"clustersmt/internal/campaign/fleet"
	"clustersmt/internal/campaign/service"
	"clustersmt/internal/campaign/store"
	"clustersmt/internal/report"
)

// runServe implements `expdriver serve`: the long-running campaign daemon.
// Submissions share one engine (and one persistent store), so concurrent
// and repeated jobs deduplicate simulations exactly as -resume does for
// one-shot runs.
func runServe(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	storeDir := fs.String("store", ".campaign", "persistent result store directory (empty disables persistence)")
	workers := fs.Int("workers", 0, "total concurrent simulations across all jobs (0 = NumCPU)")
	jobWorkers := fs.Int("job-workers", 2, "concurrently executing campaigns")
	maxQueue := fs.Int("max-queue", 256, "max jobs waiting for a job worker before submissions are rejected")
	maxFinished := fs.Int("max-finished", 512, "retained finished jobs (oldest evicted beyond this; their results stay in the store)")
	sampleInterval := fs.Int64("sample-interval", 0, "time-series window in cycles for the SSE event stream (0 = default 8192, rounded up to a power of two; negative disables sampling)")
	eventBuffer := fs.Int("event-buffer", 0, "per-job event ring size for GET /v1/campaigns/{id}/events (0 = 1024)")
	fleetMode := fs.Bool("fleet", false, "coordinator mode: dispatch items to registered fleet workers instead of simulating in-process (see `expdriver worker`)")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "with -fleet: lease/heartbeat ttl before a worker's items requeue")
	retryMax := fs.Int("retry-max", 4, "with -fleet: attempts per item before it is poisoned (terminal failure)")
	verbose := fs.Bool("v", false, "log every simulation")
	fs.Parse(args)

	cfg := service.Config{
		Workers: *workers, JobWorkers: *jobWorkers, MaxQueue: *maxQueue, MaxFinished: *maxFinished,
		SampleInterval: *sampleInterval, EventBuffer: *eventBuffer,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		cfg.Store = st
		fmt.Fprintf(os.Stderr, "store: %s\n", st.Dir())
	}
	if *verbose {
		cfg.Verbose = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	if *fleetMode {
		// The coordinator shares the daemon's store: fleet workers read and
		// write it over /v1/store, so local and fleet runs hit one cache.
		cfg.Fleet = fleet.NewCoordinator(fleet.Config{
			Store:       cfg.Store,
			LeaseTTL:    *leaseTTL,
			MaxAttempts: *retryMax,
			Verbose:     cfg.Verbose,
		})
		fmt.Fprintf(os.Stderr, "fleet: coordinator mode (lease ttl %s, %d attempts/item)\n", *leaseTTL, *retryMax)
	}
	svc := service.New(cfg)

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "expdriver serve: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		svc.Close()
		return 1
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "expdriver serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	svc.Close() // cancels running jobs so shutdown is prompt
	return 0
}

// client is the thin HTTP client behind submit/status/cancel.
type client struct {
	base string
	hc   *http.Client
}

func newClient(addr string) *client {
	return &client{base: addr, hc: &http.Client{Timeout: 30 * time.Second}}
}

// do issues one request and decodes the JSON response into out. Non-2xx
// responses surface the server's error field.
func (c *client) do(method, path string, body io.Reader, out any) error {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(b, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s (%d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out != nil {
		return json.Unmarshal(b, out)
	}
	return nil
}

// statusLine renders one job status as a compact summary line.
func statusLine(st *service.JobStatus) string {
	line := fmt.Sprintf("%s  %-9s %s  %d/%d done (%d executed, %d store hits, %d failed)",
		st.ID, st.State, st.Campaign, st.Done, st.Total, st.Executed, st.StoreHits, st.Failed)
	if st.Error != "" {
		line += "  [" + st.Error + "]"
	}
	return line
}

// runSubmit implements `expdriver submit`: POST a manifest to a serve
// daemon, optionally wait for completion and fetch the results.
func runSubmit(args []string) int {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "serve daemon base URL")
	wait := fs.Bool("wait", false, "poll until the job finishes and print the result table")
	jsonOut := fs.String("json", "", "with -wait: write the fetched ResultSet JSON to this file")
	csvOut := fs.String("csv", "", "with -wait: write the fetched results CSV to this file")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expdriver submit [-addr URL] [-wait] [-json out.json] [-csv out.csv] manifest.json")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	// Validate locally first: a bad manifest should fail with the full
	// validation message before a daemon is even contacted.
	m, err := campaign.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	body, err := json.Marshal(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	c := newClient(*addr)
	st := &service.JobStatus{}
	if err := c.do(http.MethodPost, "/v1/campaigns", bytes.NewReader(body), st); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println(st.ID)
	fmt.Fprintln(os.Stderr, statusLine(st))
	if !*wait {
		return 0
	}

	for !st.State.Finished() {
		time.Sleep(500 * time.Millisecond)
		if err := c.do(http.MethodGet, "/v1/campaigns/"+st.ID, nil, st); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintln(os.Stderr, statusLine(st))
	}

	rs := &campaign.ResultSet{}
	if err := c.do(http.MethodGet, "/v1/campaigns/"+st.ID+"/results", nil, rs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println(report.Table(fmt.Sprintf("Campaign %s (%s)", rs.Campaign, rs.Version),
		campaignHeader(m), campaignRows(m, rs)))
	if *jsonOut != "" {
		if err := report.WriteJSONFile(*jsonOut, rs); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			return 1
		}
	}
	if *csvOut != "" {
		if err := os.WriteFile(*csvOut, []byte(report.CSV(campaign.CSVHeader(), rs.CSVRows())), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			return 1
		}
	}
	if st.State != service.StateDone {
		return 1
	}
	return 0
}

// runStatus implements `expdriver status [id]`: one job's status (with the
// per-item breakdown) or, without an id, the daemon's full job list.
func runStatus(args []string) int {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "serve daemon base URL")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expdriver status [-addr URL] [job-id]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	c := newClient(*addr)
	switch fs.NArg() {
	case 0:
		var list []*service.JobStatus
		if err := c.do(http.MethodGet, "/v1/campaigns", nil, &list); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, st := range list {
			fmt.Println(statusLine(st))
		}
		return 0
	case 1:
		st := &service.JobStatus{}
		if err := c.do(http.MethodGet, "/v1/campaigns/"+fs.Arg(0)+"?items=1", nil, st); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println(statusLine(st))
		var rows [][]string
		for _, it := range st.Items {
			source := ""
			if it.State == service.StateDone {
				source = "run"
				if it.Cached {
					source = "store"
				}
			}
			rows = append(rows, []string{it.Label, string(it.State), source, it.Error})
		}
		fmt.Println(report.Table("", []string{"item", "state", "source", "error"}, rows))
		return 0
	default:
		fs.Usage()
		return 2
	}
}

// runCancel implements `expdriver cancel id`.
func runCancel(args []string) int {
	fs := flag.NewFlagSet("cancel", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "serve daemon base URL")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expdriver cancel [-addr URL] job-id")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	c := newClient(*addr)
	st := &service.JobStatus{}
	if err := c.do(http.MethodDelete, "/v1/campaigns/"+fs.Arg(0), nil, st); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintln(os.Stderr, statusLine(st))
	return 0
}
