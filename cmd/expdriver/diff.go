package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"clustersmt/internal/campaign"
	"clustersmt/internal/report"
)

// runDiff implements `expdriver diff [-tol T] [-numbers-only] A.json B.json`.
//
// When both files are campaign result sets, results are matched by label
// and reported as per-spec IPC deltas (the branch-vs-main view); otherwise
// the documents are compared structurally with the numeric tolerance (the
// CI figure-regression gate). Exit status 1 means the difference exceeded
// the tolerance somewhere.
func runDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tol := fs.Float64("tol", 0.02, "relative tolerance on numeric values (and on campaign IPC deltas)")
	numbersOnly := fs.Bool("numbers-only", false, "ignore non-numeric leaf mismatches in the structural comparison")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expdriver diff [-tol T] [-numbers-only] old.json new.json")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	a, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	b, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if ra, ok := campaign.ParseResultSet(a); ok {
		if rb, ok := campaign.ParseResultSet(b); ok {
			return diffResultSets(ra, rb, *tol)
		}
	}

	mismatches, err := campaign.CompareJSON(a, b, *tol, *numbersOnly)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(mismatches) == 0 {
		fmt.Printf("documents match within %.2f%% tolerance\n", 100**tol)
		return 0
	}
	for _, m := range mismatches {
		fmt.Println(m)
	}
	fmt.Fprintf(os.Stderr, "%d value(s) outside the %.2f%% tolerance\n", len(mismatches), 100**tol)
	return 1
}

func diffResultSets(ra, rb *campaign.ResultSet, tol float64) int {
	rep := campaign.Diff(ra, rb)
	var rows [][]string
	for _, row := range rep.Rows {
		delta := "-"
		switch {
		case row.OnlyIn == "a":
			delta = "only in " + ra.Campaign
		case row.OnlyIn == "b":
			delta = "only in " + rb.Campaign
		case !math.IsNaN(row.Delta):
			delta = fmt.Sprintf("%+.2f%%", 100*row.Delta)
		}
		rows = append(rows, []string{row.Label, report.F(row.IPCA), report.F(row.IPCB), delta})
	}
	fmt.Println(report.Table(
		fmt.Sprintf("Campaign diff: %s -> %s (mean IPC delta %+.2f%%)", ra.Campaign, rb.Campaign, 100*rep.MeanDelta),
		[]string{"spec", "ipc A", "ipc B", "delta"}, rows))
	if bad := rep.Exceeds(tol); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "%d spec(s) moved more than %.2f%% (or are unmatched)\n", len(bad), 100*tol)
		return 1
	}
	return 0
}
