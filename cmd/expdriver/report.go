package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"clustersmt/internal/campaign"
	"clustersmt/internal/campaign/store"
	"clustersmt/internal/core"
	"clustersmt/internal/report/html"
)

// runReport implements `expdriver report`: run a campaign manifest with
// time-series sampling enabled and render the ResultSet as a single
// self-contained HTML file (internal/report/html). By default the run is
// memory-only — no -store — so every item actually executes and carries a
// time series; point -store at a result store to reuse prior runs instead
// (store hits then have summary rows but no sparkline).
func runReport(args []string) int {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	out := fs.String("o", "report.html", "output HTML file")
	storeDir := fs.String("store", "", "campaign result store directory (default: none, so every item executes and is sampled)")
	quick := fs.Bool("quick", false, "cap trace lengths at 8000 uops and sample every 1024 cycles (fast smoke render, e.g. in CI)")
	sampleInterval := fs.Int64("sample-interval", 0, "time-series window in cycles (0 = default 8192, rounded up to a power of two)")
	strict := fs.Bool("strict", false, "exit non-zero if any report section is empty")
	verbose := fs.Bool("v", false, "log every simulation")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expdriver report [-o report.html] [-store DIR] [-quick] [-strict] manifest.json")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	m, err := campaign.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	interval := *sampleInterval
	if *quick {
		for i, tl := range m.TraceLens {
			if tl > 8000 {
				m.TraceLens[i] = 8000
			}
		}
		if interval == 0 {
			interval = 1024
		}
	}
	if interval == 0 {
		interval = core.DefaultSampleInterval
	}

	eng := campaign.Engine{Resume: true, SampleInterval: interval}
	if *verbose {
		eng.Verbose = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		eng.Store = st
	}

	start := time.Now()
	rs, err := eng.Run(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	doc := html.Build(rs)
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	renderErr := doc.Render(f)
	if err := f.Close(); renderErr == nil {
		renderErr = err
	}
	if renderErr != nil {
		fmt.Fprintln(os.Stderr, renderErr)
		return 1
	}
	fmt.Fprintf(os.Stderr, "report %s: %d items — %d executed, %d store hits, %d failed (%v) -> %s\n",
		rs.Campaign, rs.Total, rs.Executed, rs.StoreHits, rs.Failed, time.Since(start).Round(time.Millisecond), *out)

	if empty := doc.EmptySections(); len(empty) > 0 {
		fmt.Fprintf(os.Stderr, "report: empty sections: %s\n", strings.Join(empty, ", "))
		if *strict {
			return 1
		}
	}
	if rs.Failed > 0 {
		fmt.Fprintln(os.Stderr, rs.Err())
		return 1
	}
	return 0
}
