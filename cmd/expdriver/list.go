package main

import (
	"flag"
	"fmt"
	"os"

	"clustersmt/internal/policy"
	"clustersmt/internal/report"
	"clustersmt/internal/workload"
)

// runSchemes implements `expdriver schemes`: the authoritative registry
// listing the README's scheme table is checked against. Each row names the
// scheme, its three policy components (instantiated, so the names are the
// ones the simulator actually runs) and the paper reference.
func runSchemes(args []string) int {
	fs := flag.NewFlagSet("schemes", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expdriver schemes\nlists every registered resource-assignment scheme")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	var rows [][]string
	for _, name := range policy.Names() {
		s, err := policy.Lookup(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		sel, iq, rf := s.New(2)
		rows = append(rows, []string{s.Name, sel.Name(), iq.Name(), rf.Name(), s.Ref, s.Desc})
	}
	fmt.Println(report.Table(fmt.Sprintf("Registered schemes (%d)", len(rows)),
		[]string{"scheme", "selector", "iq policy", "rf policy", "paper", "description"}, rows))
	return 0
}

// runWorkloads implements `expdriver workloads`: the Table 2 pool listing,
// optionally restricted to one category.
func runWorkloads(args []string) int {
	fs := flag.NewFlagSet("workloads", flag.ExitOnError)
	category := fs.String("category", "", "restrict to one Table 2 category")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expdriver workloads [-category dh]\nlists the reconstructed Table 2 workload pool")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	pool := workload.Pool()
	if *category != "" {
		pool = workload.ByCategory(*category)
		if len(pool) == 0 {
			fmt.Fprintf(os.Stderr, "unknown category %q (known: %v)\n", *category, workload.Categories)
			return 1
		}
	}
	var rows [][]string
	for _, w := range pool {
		rows = append(rows, []string{
			w.Name, w.Category, workload.DisplayName(w.Category),
			w.Type.String(), fmt.Sprintf("%d", len(w.Threads)),
		})
	}
	fmt.Println(report.Table(fmt.Sprintf("Workload pool (%d workloads, %d categories)", len(rows), len(workload.Categories)),
		[]string{"name", "category", "display", "type", "threads"}, rows))
	return 0
}
