package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"clustersmt/internal/policy"
	"clustersmt/internal/report"
	"clustersmt/internal/workload"
)

// runSchemes implements `expdriver schemes`: the authoritative registry
// listing the README's scheme table is checked against. Each row names the
// scheme, its three policy components and the paper reference; -json emits
// the machine-readable form (policy.SchemeInfo) the CI cross-check
// consumes.
func runSchemes(args []string) int {
	fs := flag.NewFlagSet("schemes", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the registry as JSON instead of a table")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expdriver schemes [-json]\nlists every registered resource-assignment scheme")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	infos := policy.SchemeInfos()
	if *jsonOut {
		if err := report.WriteJSON(os.Stdout, infos); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	var rows [][]string
	for _, s := range infos {
		rows = append(rows, []string{s.Name, s.Selector, s.IQ, s.RF, s.Ref, s.Desc})
	}
	fmt.Println(report.Table(fmt.Sprintf("Registered schemes (%d)", len(rows)),
		[]string{"scheme", "selector", "iq policy", "rf policy", "paper", "description"}, rows))
	fmt.Println("compose unregistered combinations with the spec grammar: sel=<selector>,iq=<iq policy>,rf=<rf policy>")
	fmt.Println("(parameters attach as :name=value, e.g. sel=stall,iq=cspsp:frac=0.4,rf=cdprf — see `expdriver components`)")
	return 0
}

// runComponents implements `expdriver components`: the three policy
// component registries the scheme-spec grammar composes, with their typed
// parameters; -json emits policy.ComponentSet (the same document GET
// /v1/components serves).
func runComponents(args []string) int {
	fs := flag.NewFlagSet("components", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the component registries as JSON instead of a table")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expdriver components [-json]\nlists the selector / IQ-policy / RF-policy component registries")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	set := policy.Components()
	if *jsonOut {
		if err := report.WriteJSON(os.Stdout, set); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
	var rows [][]string
	add := func(kind string, cs []policy.Component) {
		for _, c := range cs {
			var params []string
			for _, p := range c.Params {
				params = append(params, fmt.Sprintf("%s=%g [%g,%g]", p.Name, p.Default, p.Min, p.Max))
			}
			rows = append(rows, []string{kind, c.Name, strings.Join(params, " "), c.Ref, c.Desc})
		}
	}
	add("sel", set.Selectors)
	add("iq", set.IQ)
	add("rf", set.RF)
	fmt.Println(report.Table(fmt.Sprintf("Scheme components (%d selectors, %d IQ policies, %d RF policies)",
		len(set.Selectors), len(set.IQ), len(set.RF)),
		[]string{"kind", "component", "params (default [min,max])", "paper", "description"}, rows))
	fmt.Println("spec grammar: sel=<selector>,iq=<iq policy>,rf=<rf policy>, params as :name=value")
	fmt.Println("example: sel=stall,iq=cspsp:frac=0.4,rf=cdprf:interval=32768")
	return 0
}

// runWorkloads implements `expdriver workloads`: the Table 2 pool listing,
// optionally restricted to one category.
func runWorkloads(args []string) int {
	fs := flag.NewFlagSet("workloads", flag.ExitOnError)
	category := fs.String("category", "", "restrict to one Table 2 category")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: expdriver workloads [-category dh]\nlists the reconstructed Table 2 workload pool")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	pool := workload.Pool()
	if *category != "" {
		pool = workload.ByCategory(*category)
		if len(pool) == 0 {
			fmt.Fprintf(os.Stderr, "unknown category %q (known: %v)\n", *category, workload.Categories)
			return 1
		}
	}
	var rows [][]string
	for _, w := range pool {
		rows = append(rows, []string{
			w.Name, w.Category, workload.DisplayName(w.Category),
			w.Type.String(), fmt.Sprintf("%d", len(w.Threads)),
		})
	}
	fmt.Println(report.Table(fmt.Sprintf("Workload pool (%d workloads, %d categories)", len(rows), len(workload.Categories)),
		[]string{"name", "category", "display", "type", "threads"}, rows))
	return 0
}
