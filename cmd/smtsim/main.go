// Command smtsim runs one workload from the paper's pool (Table 2) under a
// chosen resource assignment scheme and prints the run statistics.
//
// Usage:
//
//	smtsim -workload ispec00.mix.2.1 -scheme cdprf -iq 32 -regs 64 -len 100000
//	smtsim -list                       # list workloads
//	smtsim -schemes                    # list schemes
package main

import (
	"flag"
	"fmt"
	"os"

	"clustersmt/internal/core"
	"clustersmt/internal/policy"
	"clustersmt/internal/trace"
	"clustersmt/internal/workload"
)

func main() {
	var (
		wlName   = flag.String("workload", "ispec00.mix.2.1", "workload name from the Table 2 pool")
		scheme   = flag.String("scheme", "cdprf", "resource assignment scheme: a registered name or a composed spec (sel=...,iq=...,rf=...)")
		iq       = flag.Int("iq", 32, "issue-queue entries per cluster (32 or 64 in the paper)")
		regs     = flag.Int("regs", 64, "physical registers per kind per cluster (0 = unbounded)")
		rob      = flag.Int("rob", 128, "ROB entries per thread (0 = unbounded)")
		traceLen = flag.Int("len", 100000, "trace length per thread (uops)")
		warmup   = flag.Int("warmup", 0, "warm-up commits per thread before measuring (0 = len/5)")
		single   = flag.Int("single", -1, "run only this thread alone (-1 = full SMT workload)")
		list     = flag.Bool("list", false, "list all workloads and exit")
		schemes  = flag.Bool("schemes", false, "list all schemes and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			fmt.Println(name)
		}
		return
	}
	if *schemes {
		for _, name := range policy.Names() {
			fmt.Println(name)
		}
		return
	}

	w, err := workload.Find(*wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var progs []core.ThreadProgram
	for i, prof := range w.Threads {
		if *single >= 0 && i != *single {
			continue
		}
		g := trace.NewGenerator(prof, w.Seeds[i])
		progs = append(progs, core.ThreadProgram{
			Trace:   g.Generate(*traceLen),
			Profile: prof,
			Seed:    w.Seeds[i] ^ 0xabcdef,
		})
	}
	cfg := core.DefaultConfig(len(progs))
	cfg.IQSize = *iq
	cfg.IntRegsPerCluster = *regs
	cfg.FpRegsPerCluster = *regs
	cfg.ROBPerThread = *rob
	if *warmup > 0 {
		cfg.WarmupUops = uint64(*warmup)
	} else {
		cfg.WarmupUops = uint64(*traceLen / 5)
	}

	p, err := core.NewScheme(cfg, *scheme, progs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st := p.Run()

	fmt.Printf("workload   %s  scheme %s  iq %d  regs %d  rob %d\n", w.Name, *scheme, *iq, *regs, *rob)
	fmt.Printf("cycles     %d\n", st.Cycles)
	fmt.Printf("ipc        %.4f\n", st.IPC())
	for t := range progs {
		fmt.Printf("thread %d   ipc %.4f  committed %d  fetched %d\n",
			t, st.ThreadIPC(t), st.Committed[t], st.Fetched[t])
	}
	fmt.Printf("copies/ret %.4f   (transfers %d, generated %d, committed %d)\n",
		st.CopiesPerRetired(), st.CopyTransfers, st.CopiesGenerated, st.CommittedCopies)
	fmt.Printf("iqstall/ret %.4f  (events %d, blocked cycles %d)\n",
		st.IQStallsPerRetired(), st.IQStalls, st.IQBlocked)
	fmt.Printf("stalls     rf %d  mob %d  rob %d\n", st.RFStalls, st.MOBStalls, st.ROBStalls)
	fmt.Printf("branches   lookups %d  mispredicts %d  flushes %d  squashed %d\n",
		st.BranchLookups, st.Mispredicts, st.Flushes, st.Squashed)
	fmt.Printf("memory     l2miss(loads) %d  store-forwards %d\n", st.L2Misses, st.StoreForwards)
	cs := p.Mem().Stats()
	fmt.Printf("caches     l1 %d/%d miss  l2 %d/%d miss  tlb %d/%d miss  coalesced %d\n",
		cs.L1Misses, cs.L1Accesses, cs.L2Misses, cs.L2Accesses, cs.TLBMisses, cs.TLBAccesses, cs.Coalesced)
}
