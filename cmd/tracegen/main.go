// Command tracegen materializes the synthetic traces of the Table 2
// workload pool into the binary trace format (see internal/trace), or
// inspects an existing trace file.
//
// Usage:
//
//	tracegen -workload ispec00.mix.2.1 -len 100000 -out /tmp/tr   # writes /tmp/tr.t0 /tmp/tr.t1
//	tracegen -inspect /tmp/tr.t0                                  # print summary + head
//	tracegen -list                                                # list workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"clustersmt/internal/isa"
	"clustersmt/internal/trace"
	"clustersmt/internal/workload"
)

func main() {
	var (
		wlName   = flag.String("workload", "", "workload whose threads to materialize")
		traceLen = flag.Int("len", 100000, "uops per thread")
		out      = flag.String("out", "trace", "output path prefix (one file per thread: <out>.t<i>)")
		inspect  = flag.String("inspect", "", "trace file to summarize instead of generating")
		head     = flag.Int("head", 10, "uops to print when inspecting")
		list     = flag.Bool("list", false, "list all workloads and exit")
	)
	flag.Parse()

	switch {
	case *list:
		for _, name := range workload.Names() {
			fmt.Println(name)
		}
	case *inspect != "":
		if err := inspectTrace(*inspect, *head); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *wlName != "":
		if err := generate(*wlName, *traceLen, *out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(wlName string, traceLen int, out string) error {
	w, err := workload.Find(wlName)
	if err != nil {
		return err
	}
	for i, prof := range w.Threads {
		g := trace.NewGenerator(prof, w.Seeds[i])
		uops := g.Generate(traceLen)
		path := fmt.Sprintf("%s.t%d", out, i)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := trace.Write(f, uops); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d uops (profile %s)\n", path, len(uops), prof.Name)
	}
	return nil
}

func inspectTrace(path string, head int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	uops, err := trace.Read(f)
	if err != nil {
		return err
	}
	counts := map[isa.Class]int{}
	branches, taken := 0, 0
	for i := range uops {
		counts[uops[i].Class]++
		if uops[i].Class == isa.Branch {
			branches++
			if uops[i].Taken {
				taken++
			}
		}
	}
	fmt.Printf("%s: %d uops\n", path, len(uops))
	for c := isa.Class(0); int(c) < isa.NumClasses; c++ {
		if counts[c] > 0 {
			fmt.Printf("  %-6s %8d (%.1f%%)\n", c, counts[c], 100*float64(counts[c])/float64(len(uops)))
		}
	}
	if branches > 0 {
		fmt.Printf("  taken branches: %.1f%%\n", 100*float64(taken)/float64(branches))
	}
	for i := 0; i < head && i < len(uops); i++ {
		fmt.Printf("  [%d] %s\n", i, uops[i].String())
	}
	return nil
}
